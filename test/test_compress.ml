(* Integration tests for the full pipeline, baselines, reports and
   experiment harness. *)

open Tqec_circuit
open Tqec_compress

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let quick variant =
  { Pipeline.default_config with variant; effort = Tqec_place.Placer.Quick }

let three_cnot_icm () = Tqec_icm.Decompose.run Suite.three_cnot_example

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_pipeline_three_cnot_all_variants () =
  let icm = three_cnot_icm () in
  List.iter
    (fun variant ->
      let r = Pipeline.run_icm ~config:(quick variant) icm in
      check Alcotest.bool "routed" true r.Pipeline.routing.Tqec_route.Pathfinder.success;
      check Alcotest.bool "volume positive" true (r.Pipeline.volume > 0);
      check Alcotest.(list string) "checks clean" [] (Pipeline.check r))
    [ Pipeline.Full; Pipeline.Dual_only; Pipeline.Modular_only ]

(* The pipeline's acyclicity gate: a cyclic constraint DAG must surface
   as Stage_failure at the icm stage, never as a bare exception. *)
let test_pipeline_rejects_cyclic_icm () =
  let icm =
    Tqec_icm.Decompose.run
      (Circuit.make ~name:"cyc" ~n_qubits:1 [ Gate.T 0; Gate.T 0 ])
  in
  let gadgets = icm.Tqec_icm.Icm.t_gadgets in
  let g0 = gadgets.(0) and g1 = gadgets.(1) in
  let stolen = List.hd g0.Tqec_icm.Icm.t_second_meas in
  gadgets.(1) <-
    {
      g1 with
      Tqec_icm.Icm.t_second_meas =
        stolen :: List.tl g1.Tqec_icm.Icm.t_second_meas;
    };
  match Pipeline.run_icm ~config:(quick Pipeline.Full) icm with
  | _ -> Alcotest.fail "cyclic ICM accepted"
  | exception Pipeline.Stage_failure { stage; message } ->
      check Alcotest.string "stage" "icm" stage;
      let contains hay needle =
        let n = String.length needle and h = String.length hay in
        let rec go i =
          i + n <= h && (String.sub hay i n = needle || go (i + 1))
        in
        go 0
      in
      check Alcotest.bool "message says cyclic" true
        (contains message "cyclic")

let test_pipeline_full_beats_dual_only () =
  (* On the 3-CNOT example the full flow must compress at least as well
     as dual-only bridging. *)
  let icm = three_cnot_icm () in
  let full = Pipeline.run_icm ~config:(quick Pipeline.Full) icm in
  let dual = Pipeline.run_icm ~config:(quick Pipeline.Dual_only) icm in
  check Alcotest.bool "full <= dual-only" true
    (full.Pipeline.volume <= dual.Pipeline.volume)

let test_pipeline_gate_decomposition_entry () =
  (* run accepts reversible circuits and lowers them first *)
  let c =
    Circuit.make ~name:"tof" ~n_qubits:3
      [ Gate.Toffoli { c1 = 0; c2 = 1; target = 2 } ]
  in
  let r = Pipeline.run ~config:(quick Pipeline.Full) c in
  let s = Tqec_icm.Icm.stats r.Pipeline.icm in
  check Alcotest.int "7 A states" 7 s.Tqec_icm.Icm.s_a;
  check Alcotest.bool "routed" true r.Pipeline.routing.Tqec_route.Pathfinder.success

let test_pipeline_stage_stats () =
  let icm = three_cnot_icm () in
  let r = Pipeline.run_icm ~config:(quick Pipeline.Full) icm in
  let st = r.Pipeline.stages in
  check Alcotest.int "modules" 6 st.Pipeline.st_modules;
  check Alcotest.int "ishape merges" 3 st.Pipeline.st_ishape_merges;
  check Alcotest.int "nets" 3 st.Pipeline.st_nets;
  check Alcotest.int "one dual bridge" 1 st.Pipeline.st_dual_bridges;
  check Alcotest.bool "nodes positive" true (st.Pipeline.st_nodes > 0)

let test_pipeline_deterministic () =
  let icm = three_cnot_icm () in
  let a = Pipeline.run_icm ~config:(quick Pipeline.Full) icm in
  let b = Pipeline.run_icm ~config:(quick Pipeline.Full) icm in
  check Alcotest.int "same volume" a.Pipeline.volume b.Pipeline.volume

let prop_pipeline_sound_on_random =
  QCheck.Test.make ~name:"pipeline sound on random circuits" ~count:8
    (QCheck.int_range 1 300)
    (fun seed ->
      let c = Generator.random_clifford_t ~seed ~n_qubits:3 ~n_gates:15 in
      let r = Pipeline.run ~config:(quick Pipeline.Full) c in
      r.Pipeline.routing.Tqec_route.Pathfinder.success
      && Pipeline.check r = [])

let prop_full_never_worse_than_modular =
  QCheck.Test.make ~name:"bridging never hurts vs modular placement"
    ~count:6
    (QCheck.int_range 1 100)
    (fun seed ->
      let c = Generator.random_clifford_t ~seed ~n_qubits:3 ~n_gates:12 in
      let icm = Tqec_icm.Decompose.run c in
      if Array.length icm.Tqec_icm.Icm.cnots < 2 then true
      else
        let full = Pipeline.run_icm ~config:(quick Pipeline.Full) icm in
        let modular =
          Pipeline.run_icm ~config:(quick Pipeline.Modular_only) icm
        in
        (* at toy scale routing noise can dominate; bridging must never
           be catastrophically worse than plain modular placement *)
        float_of_int full.Pipeline.volume
        <= 1.6 *. float_of_int modular.Pipeline.volume)

(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)
(* ------------------------------------------------------------------ *)

let test_canonical_matches_paper_all_rows () =
  (* canonical closed form equals the paper's Table 2 for all 8 rows
     (statistics identities make this exact) *)
  List.iter
    (fun (e : Suite.entry) ->
      let icm =
        Tqec_icm.Decompose.run (Clifford_t.decompose (Suite.circuit e))
      in
      check Alcotest.int
        (e.Suite.spec.Generator.name ^ " canonical")
        e.Suite.paper.Suite.p_canonical
        (Baselines.canonical_volume icm))
    [ List.nth Suite.all 0; List.nth Suite.all 4 ]

let test_lin_between_canonical_and_zero () =
  let icm =
    Tqec_icm.Decompose.run
      (Clifford_t.decompose (Suite.circuit (List.nth Suite.all 0)))
  in
  let canonical = Baselines.canonical_volume icm in
  let l1 = Baselines.lin_1d icm and l2 = Baselines.lin_2d icm in
  check Alcotest.bool "lin1d <= canonical" true (l1.Baselines.l_volume <= canonical);
  check Alcotest.bool "lin2d <= lin1d" true
    (l2.Baselines.l_volume <= l1.Baselines.l_volume);
  check Alcotest.bool "positive" true (l2.Baselines.l_volume > 0)

let test_lin_respects_dependencies () =
  (* serial chain: every CNOT shares a line with the next -> steps =
     #CNOTs regardless of conflicts *)
  let c =
    Circuit.make ~name:"chain" ~n_qubits:4
      [
        Gate.Cnot { control = 0; target = 1 };
        Gate.Cnot { control = 1; target = 2 };
        Gate.Cnot { control = 2; target = 3 };
      ]
  in
  let icm = Tqec_icm.Decompose.run c in
  check Alcotest.int "serial steps" 3 (Baselines.lin_1d icm).Baselines.l_steps

let test_lin_parallelizes_disjoint () =
  (* distant disjoint CNOTs share a step; a touching one and a dependent
     one serialize: 4 gates in 3 steps *)
  let c =
    Circuit.make ~name:"par" ~n_qubits:7
      [
        Gate.Cnot { control = 0; target = 1 };
        Gate.Cnot { control = 5; target = 6 };
        Gate.Cnot { control = 2; target = 3 };
        Gate.Cnot { control = 3; target = 4 };
      ]
  in
  let icm = Tqec_icm.Decompose.run c in
  check Alcotest.int "three steps" 3 (Baselines.lin_1d icm).Baselines.l_steps

let test_lin_adjacent_conflict () =
  (* touching intervals may not share a step (one-unit separation) *)
  let c =
    Circuit.make ~name:"touch" ~n_qubits:4
      [
        Gate.Cnot { control = 0; target = 1 };
        Gate.Cnot { control = 2; target = 3 };
      ]
  in
  let icm = Tqec_icm.Decompose.run c in
  check Alcotest.int "separated steps" 2 (Baselines.lin_1d icm).Baselines.l_steps

(* Cross-module invariants. *)

let prop_lin_steps_at_least_depth =
  QCheck.Test.make
    ~name:"Lin 1D steps >= ICM dependency depth (conflicts only add)"
    ~count:25
    (QCheck.int_range 1 2000)
    (fun seed ->
      let c = Generator.random_clifford_t ~seed ~n_qubits:4 ~n_gates:25 in
      let icm = Tqec_icm.Decompose.run c in
      (Baselines.lin_1d icm).Baselines.l_steps
      >= (Tqec_icm.Schedule.asap icm).Tqec_icm.Schedule.depth)

let prop_volume_covers_boxes =
  QCheck.Test.make
    ~name:"pipeline volume >= total distillation box volume" ~count:8
    (QCheck.int_range 1 400)
    (fun seed ->
      let c = Generator.random_clifford_t ~seed ~n_qubits:3 ~n_gates:10 in
      let icm = Tqec_icm.Decompose.run c in
      let s = Tqec_icm.Icm.stats icm in
      let boxes = (18 * s.Tqec_icm.Icm.s_y) + (192 * s.Tqec_icm.Icm.s_a) in
      let r = Pipeline.run_icm ~config:(quick Pipeline.Full) icm in
      r.Pipeline.volume >= boxes)

let prop_canonical_upper_bounds_lin =
  QCheck.Test.make ~name:"lin volumes never exceed canonical" ~count:20
    (QCheck.int_range 1 2000)
    (fun seed ->
      let c = Generator.random_clifford_t ~seed ~n_qubits:5 ~n_gates:30 in
      let icm = Tqec_icm.Decompose.run c in
      let canonical = Baselines.canonical_volume icm in
      (Baselines.lin_1d icm).Baselines.l_volume <= canonical
      && (Baselines.lin_2d icm).Baselines.l_volume <= canonical)

(* ------------------------------------------------------------------ *)
(* Report / Experiments                                                *)
(* ------------------------------------------------------------------ *)

let test_fig1_series_monotone () =
  let series = Experiments.fig1_series () in
  check Alcotest.int "four configurations" 4 (List.length series);
  let volumes = List.map (fun (_, v, _) -> v) series in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  check Alcotest.bool "monotone decreasing" true (non_increasing volumes)

let test_report_rendering () =
  let config =
    {
      Experiments.effort = Tqec_place.Placer.Quick;
      scale = 16;
      auto_scale = false;
      seed = 42;
      benchmarks = [ "4gt10-v1_81" ];
      restarts = 1;
      jobs = Some 1;
      early_stop_margin = Some 0.05;
      partition = None;
      debug = false;
    }
  in
  let rows = Experiments.run_all config in
  check Alcotest.int "one row" 1 (List.length rows);
  let t1 = Report.table1 rows in
  let t2 = Report.table2 rows in
  let t3 = Report.table3 rows in
  check Alcotest.bool "t1 mentions benchmark" true
    (String.length t1 > 0 && String.length t2 > 0 && String.length t3 > 0);
  let row = List.hd rows in
  check Alcotest.bool "ours <= dual-only (scaled)" true
    (row.Report.r_ours <= (11 * row.Report.r_dual_only / 10))

let test_midsize_benchmark_soundness () =
  (* an end-to-end soundness pass at a few hundred modules: placement
     legality, routing connectivity, emitted-geometry validity *)
  let e = List.hd Suite.all in
  let c = Suite.scaled ~factor:4 e in
  let icm = Tqec_icm.Decompose.run (Clifford_t.decompose c) in
  let r = Pipeline.run_icm ~config:(quick Pipeline.Full) icm in
  check Alcotest.bool "routed" true r.Pipeline.routing.Tqec_route.Pathfinder.success;
  check Alcotest.(list string) "pipeline checks" [] (Pipeline.check r);
  check Alcotest.int "emit geometry issues" 0 (List.length (Emit.check r));
  check Alcotest.bool "emit volume consistent" true (Emit.volume_consistent r)

let test_summary_mentions_paper () =
  let config =
    {
      Experiments.effort = Tqec_place.Placer.Quick;
      scale = 16;
      auto_scale = false;
      seed = 42;
      benchmarks = [ "4gt10-v1_81" ];
      restarts = 1;
      jobs = Some 1;
      early_stop_margin = Some 0.05;
      partition = None;
      debug = false;
    }
  in
  let rows = Experiments.run_all config in
  let s = Report.summary rows in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
    scan 0
  in
  check Alcotest.bool "mentions paper ratios" true (contains "24.04");
  check Alcotest.bool "mentions reduction" true (contains "47.4")

let test_config_from_env_defaults () =
  let c = Experiments.config_from_env () in
  check Alcotest.int "eight benchmarks" 8 (List.length c.Experiments.benchmarks)

let suites =
  [
    ( "compress.pipeline",
      [
        Alcotest.test_case "all variants sound" `Quick
          test_pipeline_three_cnot_all_variants;
        Alcotest.test_case "full beats dual-only" `Quick
          test_pipeline_full_beats_dual_only;
        Alcotest.test_case "gate decomposition entry" `Quick
          test_pipeline_gate_decomposition_entry;
        Alcotest.test_case "stage stats" `Quick test_pipeline_stage_stats;
        Alcotest.test_case "cyclic ICM -> Stage_failure" `Quick
          test_pipeline_rejects_cyclic_icm;
        Alcotest.test_case "deterministic" `Quick test_pipeline_deterministic;
        qtest prop_pipeline_sound_on_random;
        qtest prop_full_never_worse_than_modular;
      ] );
    ( "compress.baselines",
      [
        Alcotest.test_case "canonical matches paper" `Quick
          test_canonical_matches_paper_all_rows;
        Alcotest.test_case "lin ordering" `Quick test_lin_between_canonical_and_zero;
        Alcotest.test_case "lin dependencies" `Quick test_lin_respects_dependencies;
        Alcotest.test_case "lin parallelism" `Quick test_lin_parallelizes_disjoint;
        Alcotest.test_case "lin separation" `Quick test_lin_adjacent_conflict;
        qtest prop_lin_steps_at_least_depth;
        qtest prop_volume_covers_boxes;
        qtest prop_canonical_upper_bounds_lin;
      ] );
    ( "compress.experiments",
      [
        Alcotest.test_case "fig1 monotone" `Slow test_fig1_series_monotone;
        Alcotest.test_case "report rendering" `Slow test_report_rendering;
        Alcotest.test_case "mid-size soundness" `Slow
          test_midsize_benchmark_soundness;
        Alcotest.test_case "summary content" `Slow test_summary_mentions_paper;
        Alcotest.test_case "env config" `Quick test_config_from_env_defaults;
      ] );
  ]
