(* Fuzzing fleet under Alcotest: the QCheck2 property tests (with a
   fixed random state so CI replays one deterministic case sequence),
   the .qct fixture format round-trip, and the planted-fault gate that
   proves the oracles catch a real pipeline bug and shrink it to a
   minimal reproducer. *)

open Tqec_circuit
open Tqec_fuzz

let check = Alcotest.check

(* Fixed-seed QCheck runs, the qcheck-alcotest bridge: each property is
   a handful of cases here — the heavy campaign lives behind
   bench/fuzz.exe and the @fuzz-smoke alias. *)
let rand () = Random.State.make [| 0xF522 |]

let qcheck_tests =
  List.map
    (fun t -> QCheck_alcotest.to_alcotest ~rand:(rand ()) t)
    [
      Harness.test ~count:8 ~name:"pipeline oracles hold" ();
      Lint_soup.test ~count:500;
      QCheck2.Test.make ~count:50 ~name:"qct round-trips"
        ~print:(fun c -> Qct.to_string c)
        Case.gen_circuit
        (fun c ->
          let c' = Qct.parse_string ~name:c.Circuit.name (Qct.to_string c) in
          c'.Circuit.n_qubits = c.Circuit.n_qubits
          && c'.Circuit.gates = c.Circuit.gates);
    ]

(* --- .qct parse errors --------------------------------------------- *)

let expect_parse_error ~line text =
  match Qct.parse_string ~name:"bad" text with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Qct.Parse_error { line = got; _ } ->
      check Alcotest.int "error line" line got

let test_qct_malformed () =
  expect_parse_error ~line:1 "h 0\n";
  (* gates before the qubits directive *)
  expect_parse_error ~line:2 "qubits 2\nqubits 3\n";
  expect_parse_error ~line:1 "qubits 0\n";
  expect_parse_error ~line:2 "qubits 2\ncnot 0 0\n";
  expect_parse_error ~line:2 "qubits 2\nh 2\n";
  expect_parse_error ~line:2 "qubits 2\ntoffoli 0 1\n";
  expect_parse_error ~line:0 "# only a comment\n"

let test_qct_comments_and_case () =
  let c =
    Qct.parse_string ~name:"ok"
      "# header\nQUBITS 3\n\nH 0   # trailing\n\tcnot\t1  2\n"
  in
  check Alcotest.int "qubits" 3 c.Circuit.n_qubits;
  check Alcotest.int "gates" 2 (List.length c.Circuit.gates)

let test_qct_rejects_non_clifford_t () =
  let c =
    Circuit.make ~name:"toff" ~n_qubits:3
      [ Gate.Toffoli { c1 = 0; c2 = 1; target = 2 } ]
  in
  match Qct.to_string c with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- planted faults ------------------------------------------------ *)

(* The acceptance gate: with a stage fault planted into every result
   the campaign must fail, and integrated shrinking must walk the
   counterexample down to a minimal reproducer (<= 8 gates; the volume
   misreport is observable even on the empty circuit). *)
let test_planted_fault_shrinks () =
  let o = Harness.run ~fault:Oracle.Volume_misreport ~seed:7 ~count:40 () in
  match o.Harness.failure with
  | None -> Alcotest.fail "planted fault was not caught"
  | Some f ->
      let gates = List.length f.Harness.case.Case.circuit.Circuit.gates in
      check Alcotest.bool
        (Printf.sprintf "shrunk to %d gates (<= 8)" gates)
        true (gates <= 8);
      check Alcotest.bool "oracle message mentions the stage" true
        (String.length f.Harness.message > 0)

let test_all_faults_caught () =
  List.iter
    (fun fault ->
      let o = Harness.run ~fault ~seed:11 ~count:25 () in
      check Alcotest.bool (Oracle.fault_name fault ^ " caught") true
        (o.Harness.failure <> None))
    [ Oracle.Volume_misreport; Oracle.Route_drop_cell; Oracle.Placement_collide ]

let test_fault_names_roundtrip () =
  List.iter
    (fun f ->
      check Alcotest.bool (Oracle.fault_name f) true
        (Oracle.fault_of_string (Oracle.fault_name f) = Some f))
    [ Oracle.Volume_misreport; Oracle.Route_drop_cell; Oracle.Placement_collide ];
  check Alcotest.bool "unknown fault" true (Oracle.fault_of_string "bogus" = None)

(* --- reproducer rendering ------------------------------------------ *)

let test_flag_vector_replayable () =
  let case =
    {
      Case.circuit = Circuit.make ~name:"f" ~n_qubits:2 [ Gate.T 0 ];
      seed = 9;
      restarts = 2;
      jobs = 3;
      partition = Some 4;
      corridor_cells = Some 64;
    }
  in
  check Alcotest.string "flags"
    "--seed 9 -r 2 -j 3 --partition 4 --corridor 64"
    (Case.flag_vector case);
  let printed = Case.print case in
  check Alcotest.bool "embeds qct" true
    (String.length printed > 0
    && printed.[0] = '#'
    (* the fixture part must itself parse back *)
    &&
    let c = Qct.parse_string ~name:"f" (Qct.to_string case.Case.circuit) in
    c.Circuit.gates = [ Gate.T 0 ])

let suites =
  [
    ("fuzz.properties", qcheck_tests);
    ( "fuzz.qct",
      [
        Alcotest.test_case "malformed inputs" `Quick test_qct_malformed;
        Alcotest.test_case "comments and case" `Quick test_qct_comments_and_case;
        Alcotest.test_case "non-Clifford+T unprintable" `Quick
          test_qct_rejects_non_clifford_t;
      ] );
    ( "fuzz.faults",
      [
        Alcotest.test_case "volume fault shrinks <= 8 gates" `Quick
          test_planted_fault_shrinks;
        Alcotest.test_case "all faults caught" `Quick test_all_faults_caught;
        Alcotest.test_case "fault names" `Quick test_fault_names_roundtrip;
      ] );
    ( "fuzz.reproducer",
      [
        Alcotest.test_case "flag vector" `Quick test_flag_vector_replayable;
      ] );
  ]
