(* Schema gate for BENCH_scale.json (written by the TQEC_SCALE_TIER=1
   sweep in main.ml): parses the report with the serve JSON codec and
   checks every field plotting and build rules rely on, so a harness
   refactor that silently changes the report shape fails `dune runtest`
   instead of downstream tooling.

   Beyond shape, it pins the sweep's substance: at least one tier must
   record corridor-cache hits in its cache-on run (the sweep forces the
   hierarchical router with a low corridor threshold and runs at
   TQEC_JOBS=1, where cross-iteration certification is live), and a
   cache-off run must record no hits at all.  Fingerprint equality
   between the two runs is enforced by the sweep itself before the
   report is written.

   Usage: scale_schema.exe BENCH_scale.json *)

module Json = Tqec_serve.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      Printf.eprintf "[scale-schema] FAIL: %s\n%!" m;
      exit 1)
    fmt

let need_int ~ctx name obj =
  match Option.bind (Json.member name obj) Json.to_int with
  | Some v -> v
  | None -> fail "%s: missing or non-integer field %S" ctx name

let need_str ~ctx name obj =
  match Option.bind (Json.member name obj) Json.to_str with
  | Some v -> v
  | None -> fail "%s: missing or non-string field %S" ctx name

let need_counters ~ctx name obj =
  match Json.member name obj with
  | Some (Json.Obj _ as c) ->
      (match Option.bind (Json.member "wall_s" c) Json.to_float with
      | Some w when w >= 0. -> ()
      | _ -> fail "%s.%s: missing or negative wall_s" ctx name);
      List.iter
        (fun f -> ignore (need_int ~ctx:(ctx ^ "." ^ name) f c))
        [
          "cache_hits"; "cache_misses"; "cache_stale"; "coarse_searches";
          "fine_searches"; "flat_searches"; "flat_fallbacks"; "scratch_grows";
        ];
      c
  | _ -> fail "%s: missing counters object %S" ctx name

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else fail "no path" in
  let text =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let root =
    match Json.of_string text with
    | v -> v
    | exception Json.Parse_error m -> fail "%s does not parse: %s" path m
  in
  let schema = need_str ~ctx:"root" "schema" root in
  if schema <> "tqec-bench-scale/1" then
    fail "unknown schema %S (want tqec-bench-scale/1)" schema;
  let effort = need_str ~ctx:"root" "effort" root in
  if not (List.mem effort [ "quick"; "normal"; "full" ]) then
    fail "bad effort %S" effort;
  ignore (need_int ~ctx:"root" "seed" root);
  ignore (need_int ~ctx:"root" "corridor_cells" root);
  if need_int ~ctx:"root" "reps" root < 1 then
    fail "reps must be at least 1";
  let tiers =
    match Option.bind (Json.member "tiers" root) Json.to_list with
    | Some (_ :: _ as l) -> l
    | Some [] -> fail "empty tiers list"
    | None -> fail "missing tiers list"
  in
  let total_hits = ref 0 in
  List.iteri
    (fun i tier ->
      let ctx = Printf.sprintf "tiers[%d]" i in
      List.iter
        (fun f -> ignore (need_int ~ctx f tier))
        [ "tier"; "modules"; "nodes"; "volume"; "grid_cells"; "touched_cells" ];
      if need_str ~ctx "fingerprint" tier = "" then
        fail "%s: empty fingerprint" ctx;
      let off = need_counters ~ctx "cache_off" tier in
      let on = need_counters ~ctx "cache_on" tier in
      if need_int ~ctx:(ctx ^ ".cache_off") "cache_hits" off <> 0 then
        fail "%s: cache-off run recorded cache hits" ctx;
      total_hits := !total_hits + need_int ~ctx:(ctx ^ ".cache_on") "cache_hits" on)
    tiers;
  if !total_hits = 0 then
    fail "no corridor-cache hits recorded across %d tiers" (List.length tiers);
  Printf.printf "[scale-schema] %s ok: %d tiers, %d cache hits\n%!" path
    (List.length tiers) !total_hits
