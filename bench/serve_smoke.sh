#!/usr/bin/env bash
# Serve smoke (@serve-smoke, in `dune runtest`): boots a real daemon on
# a temp socket and pins the serving contract end to end —
#
#   parity    three suite instances x two knob sets: the daemon's payload
#             is byte-identical to `tqecc compress --porcelain`, and each
#             combo passes the whole-pipeline `tqecc check`;
#   caching   a duplicate .qct request is served from cache (hit counter
#             increments) with identical bytes;
#   overload  a second daemon with capacity 1, pinned in the computing
#             state by TQEC_SERVE_HOLD_MS, answers concurrent extra
#             requests with a structured busy response (exit 3) while the
#             admitted request still completes with the right bytes;
#   faults    a third daemon with TQEC_SERVE_FAULT planted answers every
#             compression with a structured error (exit 1, Stage_failure
#             text) and keeps serving afterwards instead of dying.
set -eu

TQECC="$1"
TMP="$(mktemp -d)"
SOCK="$TMP/serve.sock"
SOCK2="$TMP/hold.sock"
SOCK3="$TMP/fault.sock"
SERVE_PID=""
HOLD_PID=""
FAULT_PID=""

cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  [ -n "$HOLD_PID" ] && kill "$HOLD_PID" 2>/dev/null || true
  [ -n "$FAULT_PID" ] && kill "$FAULT_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

await() { # await <socket>: poll until the daemon answers a stats request
  for _ in $(seq 1 200); do
    if "$TQECC" request --socket "$1" --stats >/dev/null 2>&1; then return 0; fi
    sleep 0.05
  done
  fail "daemon on $1 never became ready"
}

stat_of() { # stat_of <socket> <field>
  "$TQECC" request --socket "$1" --stats | tr ' ' '\n' | sed -n "s/^$2=//p"
}

# ---------------------------------------------------------------- parity

"$TQECC" serve --socket "$SOCK" --capacity 2 >/dev/null &
SERVE_PID=$!
await "$SOCK"

for combo in "4gt10-v1_81 16" "4gt4-v0_73 32" "rd84_142 96"; do
  set -- $combo; b="$1"; s="$2"
  for knobs in "--seed 1 -r 1" "--seed 9 -r 2"; do
    "$TQECC" compress "$b" --scale "$s" -e quick $knobs --porcelain \
      > "$TMP/cli.out" || fail "compress $b/$s $knobs"
    "$TQECC" request --socket "$SOCK" "$b" --scale "$s" -e quick $knobs \
      > "$TMP/srv.out" 2>/dev/null || fail "request $b/$s $knobs"
    cmp -s "$TMP/cli.out" "$TMP/srv.out" \
      || fail "parity broke for $b scale $s ($knobs): $(cat "$TMP/cli.out") vs $(cat "$TMP/srv.out")"
    "$TQECC" check "$b" --scale "$s" -e quick $knobs >/dev/null \
      || fail "check rejected $b scale $s ($knobs)"
  done
done
echo "serve-smoke: parity holds on 3 instances x 2 knob sets (+check clean)"

# ---------------------------------------------------------------- caching

cat > "$TMP/fix.qct" <<'EOF'
qubits 3
h 0
cnot 0 1
t 1
cnot 1 2
EOF

H0="$(stat_of "$SOCK" hits)"
"$TQECC" request --socket "$SOCK" "$TMP/fix.qct" > "$TMP/fix1.out" 2>/dev/null \
  || fail "fixture request"
"$TQECC" request --socket "$SOCK" "$TMP/fix.qct" > "$TMP/fix2.out" 2>"$TMP/fix2.err" \
  || fail "duplicate fixture request"
H1="$(stat_of "$SOCK" hits)"
cmp -s "$TMP/fix1.out" "$TMP/fix2.out" || fail "cached payload differs"
[ "$H1" -eq $((H0 + 1)) ] || fail "hit counter did not increment ($H0 -> $H1)"
grep -q "served from cache" "$TMP/fix2.err" || fail "duplicate not marked cached"
echo "serve-smoke: duplicate request served from cache ($H0 -> $H1 hits), identical bytes"

"$TQECC" request --socket "$SOCK" --shutdown >/dev/null || fail "shutdown"
wait "$SERVE_PID" || fail "daemon exited non-zero"
SERVE_PID=""
[ ! -e "$SOCK" ] || fail "socket file left behind"

# --------------------------------------------------------------- overload

TQEC_SERVE_HOLD_MS=2000 "$TQECC" serve --socket "$SOCK2" --capacity 1 \
  >/dev/null &
HOLD_PID=$!
await "$SOCK2"

"$TQECC" compress 4gt10-v1_81 --scale 16 -e quick --seed 1 --porcelain \
  > "$TMP/want.out"
"$TQECC" request --socket "$SOCK2" 4gt10-v1_81 --scale 16 -e quick --seed 1 \
  > "$TMP/admitted.out" 2>/dev/null &
ADM_PID=$!
sleep 0.5

P1= P2= P3=
for i in 1 2 3; do
  "$TQECC" request --socket "$SOCK2" 4gt4-v0_73 --scale 32 -e quick --seed "$i" \
    >/dev/null 2>"$TMP/busy$i.err" &
  eval "P$i=$!"
done
for i in 1 2 3; do
  rc=0; eval "wait \$P$i" || rc=$?
  [ "$rc" -eq 3 ] || fail "overflow request $i exited $rc, want 3 (busy)"
  grep -q "server busy" "$TMP/busy$i.err" || fail "request $i missing busy message"
done

rc=0; wait "$ADM_PID" || rc=$?
[ "$rc" -eq 0 ] || fail "admitted request exited $rc"
cmp -s "$TMP/want.out" "$TMP/admitted.out" \
  || fail "admitted request payload diverged under overload"

BUSY="$(stat_of "$SOCK2" busy)"
[ "$BUSY" -eq 3 ] || fail "busy counter is $BUSY, want 3"
echo "serve-smoke: overload refused 3/3 with structured busy; admitted request completed"

"$TQECC" request --socket "$SOCK2" --shutdown >/dev/null || fail "shutdown (hold)"
wait "$HOLD_PID" || fail "hold daemon exited non-zero"
HOLD_PID=""

# ----------------------------------------------------------------- faults

TQEC_SERVE_FAULT=verification "$TQECC" serve --socket "$SOCK3" >/dev/null &
FAULT_PID=$!
await "$SOCK3"

rc=0
"$TQECC" request --socket "$SOCK3" 4gt10-v1_81 --scale 16 -e quick \
  >/dev/null 2>"$TMP/fault.err" || rc=$?
[ "$rc" -eq 1 ] || fail "planted-fault request exited $rc, want 1"
grep -q "verification: planted fault" "$TMP/fault.err" \
  || fail "planted fault not surfaced as structured error: $(cat "$TMP/fault.err")"
ERRS="$(stat_of "$SOCK3" errors)" \
  || fail "daemon died after planted fault instead of serving stats"
[ "$ERRS" -eq 1 ] || fail "error counter is $ERRS, want 1"
echo "serve-smoke: planted pipeline failure answered as structured error; daemon survived"

"$TQECC" request --socket "$SOCK3" --shutdown >/dev/null || fail "shutdown (fault)"
wait "$FAULT_PID" || fail "fault daemon exited non-zero"
FAULT_PID=""

echo "serve-smoke: OK"
