(* Open-ended fuzzing campaign driver (`bench/fuzz.exe`).

   Environment knobs:
     TQEC_FUZZ_COUNT   cases to attempt (default 200)
     TQEC_FUZZ_SEED    campaign seed (default 1337); a fixed seed
                       replays the same case sequence
     TQEC_FUZZ_TIME    wall-clock budget in seconds (default none);
                       the campaign stops between chunks once exceeded
     TQEC_FUZZ_FAULT   plant a stage fault ("volume" | "route" |
                       "overlap") into every pipeline result; the run
                       then MUST fail (exit 1) — exiting 0 means the
                       fleet lost its teeth, so that is reported as the
                       error.  The dune @fuzz-smoke alias runs this
                       inverted gate with `with-accepted-exit-codes 1`.

   On a property failure the shrunk minimal reproducer is written next
   to the current directory as a replayable `.qct` fixture and the
   exact `tqecc check` flag vector is printed. *)

let env_int name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> n
      | None ->
          Printf.eprintf "fuzz: %s wants an integer, got %S\n" name v;
          exit 2)

let () =
  let count = env_int "TQEC_FUZZ_COUNT" 200 in
  let seed = env_int "TQEC_FUZZ_SEED" 1337 in
  let budget_s =
    match Sys.getenv_opt "TQEC_FUZZ_TIME" with
    | None | Some "" -> None
    | Some v -> (
        match float_of_string_opt v with
        | Some b -> Some b
        | None ->
            Printf.eprintf "fuzz: TQEC_FUZZ_TIME wants seconds, got %S\n" v;
            exit 2)
  in
  let fault =
    match Sys.getenv_opt "TQEC_FUZZ_FAULT" with
    | None | Some "" -> None
    | Some v -> (
        match Tqec_fuzz.Oracle.fault_of_string v with
        | Some f -> Some f
        | None ->
            Printf.eprintf
              "fuzz: unknown TQEC_FUZZ_FAULT %S (want volume|route|overlap)\n"
              v;
            exit 2)
  in
  Printf.printf "fuzz: seed=%d count=%d%s%s\n%!" seed count
    (match budget_s with
    | None -> ""
    | Some b -> Printf.sprintf " budget=%.0fs" b)
    (match fault with
    | None -> ""
    | Some f ->
        Printf.sprintf " planted-fault=%s" (Tqec_fuzz.Oracle.fault_name f));
  let outcome = Tqec_fuzz.Harness.run ?fault ?budget_s ~seed ~count () in
  Printf.printf "fuzz: executed %d/%d cases in %.1fs\n%!"
    outcome.Tqec_fuzz.Harness.executed count
    outcome.Tqec_fuzz.Harness.elapsed;
  match (outcome.Tqec_fuzz.Harness.failure, fault) with
  | None, None ->
      print_endline "fuzz: all properties held";
      exit 0
  | None, Some f ->
      Printf.printf
        "fuzz: ERROR - planted fault %S was never caught; the oracle is blind\n"
        (Tqec_fuzz.Oracle.fault_name f);
      exit 3
  | Some failure, _ ->
      let fixture = Printf.sprintf "fuzz-failure-%d.qct" seed in
      Tqec_circuit.Qct.write_file fixture
        failure.Tqec_fuzz.Harness.case.Tqec_fuzz.Case.circuit;
      print_string (Tqec_fuzz.Harness.render_failure failure);
      Printf.printf "fuzz: reproducer written to %s\nfuzz: replay: tqecc check %s %s\n"
        fixture fixture
        (Tqec_fuzz.Case.flag_vector failure.Tqec_fuzz.Harness.case);
      exit 1
