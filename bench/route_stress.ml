(* Route-stress harness: runs the strengthened routing validators over
   benchmark-suite geometries and fails (exit 1) on any legality error,
   so routing regressions break `dune runtest` via the @route-stress
   alias.

   Each instance runs the full flow at quick effort, then re-checks the
   result with [Pipeline.check] — placement overlap, routing
   connectivity/pin coverage, obstacle and bounds legality, capacity and
   overuse accounting — and finally cross-checks the router's
   determinism by re-routing under a different worker count.

   Environment:
     TQEC_STRESS_BENCHMARKS = comma-separated suite names
                              (default: the two smallest instances)
     TQEC_STRESS_SCALE      = instance scale divisor (default 4)
     TQEC_SEED              = random seed (default 42) *)

module Suite = Tqec_circuit.Suite
module Pipeline = Tqec_compress.Pipeline
module Pathfinder = Tqec_route.Pathfinder

let benchmarks =
  match Sys.getenv_opt "TQEC_STRESS_BENCHMARKS" with
  | Some s -> String.split_on_char ',' s |> List.map String.trim
  | None -> [ "4gt10-v1_81"; "4gt4-v0_73" ]

let scale =
  match Sys.getenv_opt "TQEC_STRESS_SCALE" with
  | Some s -> ( match int_of_string_opt s with Some v when v >= 1 -> v | _ -> 4)
  | None -> 4

let seed =
  match Sys.getenv_opt "TQEC_SEED" with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> 42)
  | None -> 42

let run_one name =
  match Suite.find name with
  | None ->
      Printf.eprintf "[route-stress] unknown benchmark %s (suite: %s)\n%!" name
        (String.concat ", " Suite.names);
      false
  | Some entry ->
      let circuit = Suite.scaled ~factor:scale entry in
      let run jobs =
        Pipeline.run
          ~config:
            {
              Pipeline.default_config with
              effort = Tqec_place.Placer.Quick;
              seed;
              jobs;
            }
          circuit
      in
      let r = run (Some 1) in
      let issues = Pipeline.check r in
      let routed = r.Pipeline.routing.Pathfinder.success in
      let deterministic =
        (run (Some 4)).Pipeline.routing = r.Pipeline.routing
      in
      Printf.printf
        "[route-stress] %-18s volume=%-9d nets-routed=%b iterations=%d \
         overused=%d validator-errors=%d jobs-invariant=%b\n%!"
        (circuit.Tqec_circuit.Circuit.name)
        r.Pipeline.volume routed
        r.Pipeline.routing.Pathfinder.iterations_used
        r.Pipeline.routing.Pathfinder.overused_after (List.length issues)
        deterministic;
      List.iter (fun e -> Printf.eprintf "[route-stress]   error: %s\n%!" e) issues;
      if not deterministic then
        Printf.eprintf
          "[route-stress]   error: routing differs between jobs=1 and jobs=4\n%!";
      issues = [] && routed && deterministic

(* Sparse-substrate fixture: a routing box far larger than the occupied
   skeleton — the tentpole's asymptotic regime.  A 96x96x64 substrate
   (~590k cells) carries 24 long nets confined near the z=1 plane,
   threaded through gaps in an obstacle wall.  Shared between the
   sparse-grid stress and the corridor-cache cross-check below. *)
module Grid = Tqec_route.Grid
module Box3 = Tqec_util.Box3
module Vec3 = Tqec_util.Vec3

let sparse_box = Box3.make Vec3.zero (Vec3.make 95 95 63)

let sparse_nets =
  List.init 24 (fun i ->
      let x = (4 * i) + 1 in
      {
        Pathfinder.net_id = i;
        pins = [ Vec3.make x 2 1; Vec3.make x 93 1 ];
      })

let mk_sparse_grid () =
  let g = Grid.create sparse_box in
  (* obstacle wall across the die at y=48, z=0..3, with gaps every
     16 columns: every net detours through a shared gap *)
  for x = 0 to 95 do
    if x mod 16 <> 4 then
      for z = 0 to 3 do
        Grid.set_obstacle g (Vec3.make x 48 z)
      done
  done;
  List.iter
    (fun (n : Pathfinder.net) ->
      List.iter (Grid.set_shared g) n.Pathfinder.pins)
    sparse_nets;
  g

let route_sparse ?(corridor_cache = true) ~corridor_cells ~jobs () =
  let g = mk_sparse_grid () in
  let r =
    Pathfinder.route_all g
      { Pathfinder.default_config with jobs; corridor_cells; corridor_cache }
      sparse_nets
  in
  (g, r)

(* The sparse grid must materialize only the touched slab (the z-tile
   row the routes live in), and the hierarchical corridor path (forced
   with corridor_cells = 0) must stay legal and bit-identical between
   jobs=1 and jobs=4. *)
let sparse_substrate () =
  let g_flat, flat = route_sparse ~corridor_cells:max_int ~jobs:(Some 1) () in
  let _, corr1 = route_sparse ~corridor_cells:0 ~jobs:(Some 1) () in
  let g_corr, corr4 = route_sparse ~corridor_cells:0 ~jobs:(Some 4) () in
  let nets = sparse_nets in
  let flat_issues = Pathfinder.validate g_flat flat nets in
  let corr_issues = Pathfinder.validate g_corr corr4 nets in
  let jobs_invariant = corr1 = corr4 in
  let m = Grid.mem g_corr in
  (* the substrate is 8 z-tile rows; the routes live in the bottom one *)
  let sparse = m.Grid.mem_touched_cells * 4 < m.Grid.mem_cells in
  Printf.printf
    "[route-stress] sparse-substrate    routed=%b/%b corridor-legal=%d \
     flat-legal=%d jobs-invariant=%b touched=%d/%d cells (%.1f%%) sparse=%b\n%!"
    flat.Pathfinder.success corr4.Pathfinder.success
    (List.length corr_issues) (List.length flat_issues) jobs_invariant
    m.Grid.mem_touched_cells m.Grid.mem_cells
    (100. *. float_of_int m.Grid.mem_touched_cells
     /. float_of_int (max 1 m.Grid.mem_cells))
    sparse;
  List.iter
    (fun e -> Printf.eprintf "[route-stress]   corridor error: %s\n%!" e)
    corr_issues;
  List.iter
    (fun e -> Printf.eprintf "[route-stress]   flat error: %s\n%!" e)
    flat_issues;
  if not jobs_invariant then
    Printf.eprintf
      "[route-stress]   error: corridor routing differs between jobs=1 and \
       jobs=4\n%!";
  if not sparse then
    Printf.eprintf
      "[route-stress]   error: sparse grid materialized most of the \
       substrate\n%!";
  flat.Pathfinder.success && corr4.Pathfinder.success && flat_issues = []
  && corr_issues = [] && jobs_invariant && sparse

(* Corridor-cache cross-check on the sparse substrate: with the
   hierarchical path forced (corridor_cells = 0), routes must be
   bit-identical with the cache on and off, and with the cache on at
   jobs=1 and jobs=4 — the cache is a pure memoization of the coarse
   tile-graph search, certified by tile-summary generations and the
   net's own rip/claim bookkeeping, so it may never change a route.
   The counters pin the accounting: during a cache-enabled run every
   coarse search is a recorded miss.  Hit evidence comes from a real
   negotiation workload below — the sparse substrate routes conflict
   free in one iteration, so its lookups are all first-time misses. *)
let corridor_cache_stress () =
  let module Counters = Tqec_route.Counters in
  Counters.reset ();
  let _, on1 = route_sparse ~corridor_cells:0 ~jobs:(Some 1) () in
  let s = Counters.stats () in
  let _, off1 =
    route_sparse ~corridor_cache:false ~corridor_cells:0 ~jobs:(Some 1) ()
  in
  let _, on4 = route_sparse ~corridor_cells:0 ~jobs:(Some 4) () in
  let cache_invariant = on1 = off1 in
  let jobs_invariant = on1 = on4 in
  let accounted = s.Counters.coarse_searches = s.Counters.cache_misses in
  (* Steady-state scratch: the per-domain A* workspace persists in
     domain-local storage and is warmed by the runs above (the full
     grid-box escalation step sizes it to the largest region), so a
     repeat run — widening ladder included — must not reallocate any
     score array. *)
  Counters.reset ();
  let _, warm = route_sparse ~corridor_cells:0 ~jobs:(Some 1) () in
  let grows = (Counters.stats ()).Counters.scratch_grows in
  (* Hit evidence on a congested negotiation workload: the smallest
     suite instance with a corridor threshold low enough that the
     hierarchical path carries the whole iteration 2+ re-route traffic.
     Nets whose key regions stay generation-quiet across iterations
     replay their corridors; routes must still match the uncached run
     bit for bit (fingerprint equality through the full pipeline). *)
  let pipeline_run corridor_cache =
    match Suite.find "4gt10-v1_81" with
    | None -> None
    | Some entry ->
        let circuit = Suite.scaled ~factor:4 entry in
        Some
          (Pipeline.run
             ~config:
               {
                 Pipeline.default_config with
                 effort = Tqec_place.Placer.Quick;
                 seed;
                 jobs = Some 1;
                 corridor_cells = Some 64;
                 corridor_cache;
               }
             circuit)
  in
  Counters.reset ();
  let cached = pipeline_run true in
  let ps = Counters.stats () in
  let uncached = pipeline_run false in
  let pipeline_hits = ps.Counters.cache_hits in
  let pipeline_invariant =
    match (cached, uncached) with
    | Some a, Some b -> Pipeline.fingerprint a = Pipeline.fingerprint b
    | _ -> false
  in
  Printf.printf
    "[route-stress] corridor-cache     cache-invariant=%b jobs-invariant=%b \
     misses=%d stale=%d accounted=%b steady-scratch-grows=%d \
     pipeline-hits=%d pipeline-invariant=%b\n%!"
    cache_invariant jobs_invariant s.Counters.cache_misses
    s.Counters.cache_stale accounted grows pipeline_hits pipeline_invariant;
  if not cache_invariant then
    Printf.eprintf
      "[route-stress]   error: routes differ between corridor-cache on and \
       off\n%!";
  if not jobs_invariant then
    Printf.eprintf
      "[route-stress]   error: cached corridor routing differs between \
       jobs=1 and jobs=4\n%!";
  if not accounted then
    Printf.eprintf
      "[route-stress]   error: coarse searches (%d) <> cache misses (%d) \
       during a cache-enabled run\n%!"
      s.Counters.coarse_searches s.Counters.cache_misses;
  if grows > 0 then
    Printf.eprintf
      "[route-stress]   error: %d scratch reallocations on a steady-state \
       re-route (want 0)\n%!"
      grows;
  if pipeline_hits = 0 then
    Printf.eprintf
      "[route-stress]   error: corridor cache recorded no hits on the \
       congested pipeline workload\n%!";
  if not pipeline_invariant then
    Printf.eprintf
      "[route-stress]   error: pipeline fingerprint differs between \
       corridor-cache on and off\n%!";
  warm.Pathfinder.success && cache_invariant && jobs_invariant && accounted
  && grows = 0 && pipeline_hits > 0 && pipeline_invariant

let () =
  let ok = List.fold_left (fun acc name -> run_one name && acc) true benchmarks in
  let ok = sparse_substrate () && ok in
  let ok = corridor_cache_stress () && ok in
  if ok then print_endline "[route-stress] all geometries legal"
  else begin
    prerr_endline "[route-stress] FAILED";
    exit 1
  end
