(* Route-stress harness: runs the strengthened routing validators over
   benchmark-suite geometries and fails (exit 1) on any legality error,
   so routing regressions break `dune runtest` via the @route-stress
   alias.

   Each instance runs the full flow at quick effort, then re-checks the
   result with [Pipeline.check] — placement overlap, routing
   connectivity/pin coverage, obstacle and bounds legality, capacity and
   overuse accounting — and finally cross-checks the router's
   determinism by re-routing under a different worker count.

   Environment:
     TQEC_STRESS_BENCHMARKS = comma-separated suite names
                              (default: the two smallest instances)
     TQEC_STRESS_SCALE      = instance scale divisor (default 4)
     TQEC_SEED              = random seed (default 42) *)

module Suite = Tqec_circuit.Suite
module Pipeline = Tqec_compress.Pipeline
module Pathfinder = Tqec_route.Pathfinder

let benchmarks =
  match Sys.getenv_opt "TQEC_STRESS_BENCHMARKS" with
  | Some s -> String.split_on_char ',' s |> List.map String.trim
  | None -> [ "4gt10-v1_81"; "4gt4-v0_73" ]

let scale =
  match Sys.getenv_opt "TQEC_STRESS_SCALE" with
  | Some s -> ( match int_of_string_opt s with Some v when v >= 1 -> v | _ -> 4)
  | None -> 4

let seed =
  match Sys.getenv_opt "TQEC_SEED" with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> 42)
  | None -> 42

let run_one name =
  match Suite.find name with
  | None ->
      Printf.eprintf "[route-stress] unknown benchmark %s (suite: %s)\n%!" name
        (String.concat ", " Suite.names);
      false
  | Some entry ->
      let circuit = Suite.scaled ~factor:scale entry in
      let run jobs =
        Pipeline.run
          ~config:
            {
              Pipeline.default_config with
              effort = Tqec_place.Placer.Quick;
              seed;
              jobs;
            }
          circuit
      in
      let r = run (Some 1) in
      let issues = Pipeline.check r in
      let routed = r.Pipeline.routing.Pathfinder.success in
      let deterministic =
        (run (Some 4)).Pipeline.routing = r.Pipeline.routing
      in
      Printf.printf
        "[route-stress] %-18s volume=%-9d nets-routed=%b iterations=%d \
         overused=%d validator-errors=%d jobs-invariant=%b\n%!"
        (circuit.Tqec_circuit.Circuit.name)
        r.Pipeline.volume routed
        r.Pipeline.routing.Pathfinder.iterations_used
        r.Pipeline.routing.Pathfinder.overused_after (List.length issues)
        deterministic;
      List.iter (fun e -> Printf.eprintf "[route-stress]   error: %s\n%!" e) issues;
      if not deterministic then
        Printf.eprintf
          "[route-stress]   error: routing differs between jobs=1 and jobs=4\n%!";
      issues = [] && routed && deterministic

let () =
  let ok = List.fold_left (fun acc name -> run_one name && acc) true benchmarks in
  if ok then print_endline "[route-stress] all geometries legal"
  else begin
    prerr_endline "[route-stress] FAILED";
    exit 1
  end
