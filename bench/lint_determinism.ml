(* Determinism/daemon-readiness lint over the swept source trees.
   Two rule families:

   - [Hashtbl.iter] / [Hashtbl.fold] (hash-order: these are quoted
     pattern names, not sites): iteration order depends on the hash
     layout — a silent source of run-to-run nondeterminism whenever the
     order can reach an output.  Each site must carry a nearby
     [hash-order:] audit comment stating why the order cannot leak
     (result sorted, operation commutative, ...).

   - [Sys.getenv] under lib/ (env-read: a quoted pattern name, not a
     site): an environment read in library code is a daemon hazard —
     captured at module load it freezes one process-wide value across
     every served request.  Each site must carry a nearby [env-read:]
     audit comment stating why the capture is call-time and why it is
     not request-scoped behavior (or how requests override it).  The
     CLI/bench/test layers are exempt: one env read per process
     invocation is exactly where defaults belong.

   Unaudited sites fail the lint, and so `dune runtest`.

   Usage: lint_determinism <dir>...   (the lib/, test/, bin/ and bench/
   source trees; defaults to lib) *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

type rule = {
  patterns : string list;
  marker : string;
  (* a site passes if the marker appears on the site's line, within
     [before] lines above (leading comment) or [after] below *)
  before : int;
  after : int;
  applies : string -> bool;  (* path filter *)
  advice : string;
}

let rules =
  [
    {
      (* hash-order: quoted pattern names, and this audit keeps the lint
         from flagging its own source when bench/ is swept *)
      patterns = [ "Hashtbl.iter"; "Hashtbl.fold" ];
      marker = "hash-order:";
      before = 3;
      after = 1;
      applies = (fun _ -> true);
      advice = "order-sensitive iteration; sort the output or add a";
    };
    {
      (* env-read: quoted pattern name, not a site (bench/ is swept) *)
      patterns = [ "Sys.getenv" ];
      marker = "env-read:";
      (* audit comments here explain capture time AND request scoping,
         so they run longer than a hash-order note *)
      before = 6;
      after = 1;
      applies = (fun path -> contains ~sub:"lib/" path);
      advice =
        "environment read in library code; thread it through a config \
         (the CLI layer owns env defaults) or add a";
    };
  ]

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Array.of_list (List.rev !lines)

let rec ml_files dir =
  let entries = Array.to_list (Sys.readdir dir) in
  List.concat_map
    (fun e ->
      let path = Filename.concat dir e in
      if Sys.is_directory path then ml_files path
      else if Filename.check_suffix e ".ml" then [ path ]
      else [])
    entries
  |> List.sort compare

let lint_file path =
  let lines = read_lines path in
  let n = Array.length lines in
  let bad = ref [] in
  List.iter
    (fun rule ->
      if rule.applies path then
        for i = 0 to n - 1 do
          if List.exists (fun p -> contains ~sub:p lines.(i)) rule.patterns
          then begin
            let audited = ref false in
            for j = max 0 (i - rule.before) to min (n - 1) (i + rule.after) do
              if contains ~sub:rule.marker lines.(j) then audited := true
            done;
            if not !audited then bad := (i + 1, rule) :: !bad
          end
        done)
    rules;
  List.rev_map (fun (line, rule) -> (path, line, rule)) !bad

let () =
  let dirs =
    match List.tl (Array.to_list Sys.argv) with [] -> [ "lib" ] | ds -> ds
  in
  let offenders =
    List.concat_map (fun dir -> List.concat_map lint_file (ml_files dir)) dirs
  in
  match offenders with
  | [] -> Printf.printf "lint-determinism: all audited\n"
  | offenders ->
      List.iter
        (fun (path, line, rule) ->
          Printf.printf "%s:%d: unaudited %s — %s `%s` audit comment\n" path
            line
            (String.concat "/" rule.patterns)
            rule.advice rule.marker)
        offenders;
      exit 1
