(* Determinism lint: every [Hashtbl.iter] / [Hashtbl.fold] in the swept
   trees (hash-order: these are quoted pattern names, not sites) is an
   iteration whose order depends on the hash layout — a silent source of
   run-to-run nondeterminism whenever the order can reach an output.
   Each site must carry a nearby [hash-order:] audit comment stating why
   the order cannot leak (result sorted, operation commutative, ...);
   unaudited sites fail the lint, and so `dune runtest`.

   Usage: lint_determinism <dir>...   (the lib/, test/, bin/ and bench/
   source trees; defaults to lib) *)

let marker = "hash-order:"

(* hash-order: these are the patterns the lint greps for, quoted, not
   iteration sites (and this audit keeps the lint from flagging its own
   source when bench/ is swept) *)
let pattern = [ "Hashtbl.iter"; "Hashtbl.fold" ]

(* a site passes if the marker appears on the site's line, within the 3
   lines above (leading comment) or on the line below (trailing note) *)
let window_before = 3
let window_after = 1

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Array.of_list (List.rev !lines)

let rec ml_files dir =
  let entries = Array.to_list (Sys.readdir dir) in
  List.concat_map
    (fun e ->
      let path = Filename.concat dir e in
      if Sys.is_directory path then ml_files path
      else if Filename.check_suffix e ".ml" then [ path ]
      else [])
    entries
  |> List.sort compare

let lint_file path =
  let lines = read_lines path in
  let n = Array.length lines in
  let bad = ref [] in
  for i = 0 to n - 1 do
    if List.exists (fun p -> contains ~sub:p lines.(i)) pattern then begin
      let audited = ref false in
      for j = max 0 (i - window_before) to min (n - 1) (i + window_after) do
        if contains ~sub:marker lines.(j) then audited := true
      done;
      if not !audited then bad := (i + 1) :: !bad
    end
  done;
  List.rev_map (fun line -> (path, line)) !bad |> List.rev

let () =
  let dirs =
    match List.tl (Array.to_list Sys.argv) with [] -> [ "lib" ] | ds -> ds
  in
  let offenders =
    List.concat_map (fun dir -> List.concat_map lint_file (ml_files dir)) dirs
  in
  match offenders with
  | [] ->
      Printf.printf "lint-determinism: all Hashtbl iteration sites audited\n"
  | offenders ->
      List.iter
        (fun (path, line) ->
          (* hash-order: quoted pattern names in the message, not a site *)
          Printf.printf
            "%s:%d: unaudited Hashtbl.iter/fold — order-sensitive \
             iteration; sort the output or add a `%s` audit comment\n"
            path line marker)
        offenders;
      exit 1
