(* Thin shim over the Tqec_lint subsystem (lib/lint), kept for direct
   runs: dune exec bench/lint_determinism.exe -- [dirs].  The [@lint]
   alias drives the same engine through `tqecc lint`, which adds
   --format json / --rule / --baseline; this shim is the full catalog
   over the given trees, text report, exit 1 on findings. *)

let () =
  let dirs =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> [ "lib"; "test"; "bin"; "bench" ]
    | ds -> ds
  in
  let rules = Tqec_lint.Rules.all in
  let findings = Tqec_lint.Engine.lint_dirs ~rules dirs in
  let files = List.concat_map Tqec_lint.Engine.ml_files dirs |> List.length in
  let summary =
    {
      Tqec_lint.Report.files;
      rules = Tqec_lint.Rules.ids;
      suppressed = 0;
      unused_baseline = 0;
    }
  in
  print_string (Tqec_lint.Report.text summary findings);
  exit (if findings = [] then 0 else 1)
