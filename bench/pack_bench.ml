(* Micro-benchmark for the incremental repack: the annealer's exact
   perturb/pack/undo pattern over a 128-block tree. *)
module Bstar_tree = Tqec_place.Bstar_tree
module Rng = Tqec_util.Rng

(* Absent argv slots and non-numeric input both fall back to defaults;
   match the two exceptions by name rather than swallowing everything. *)
let argv_int i default =
  match int_of_string Sys.argv.(i) with
  | v -> v
  | exception (Invalid_argument _ | Failure _) -> default

let argv_string i default =
  match Sys.argv.(i) with
  | s -> s
  | exception Invalid_argument _ -> default

let () =
  let n = argv_int 1 128 in
  let moves = argv_int 2 120_000 in
  let mode =
    match argv_string 3 "flat" with
    | "balanced" -> `Balanced
    | "flat" -> `Flat
    | _ -> `Auto
  in
  let dims =
    Array.init n (fun i -> (1 + ((i * 7) mod 5), 1 + ((i * 3) mod 4)))
  in
  let t = Bstar_tree.create ~contour:mode dims in
  let rng = Rng.create 42 in
  let xs = Array.make n 0 and ys = Array.make n 0 in
  ignore (Bstar_tree.pack_xy t xs ys);
  let t0 = Unix.gettimeofday () in
  let acc = ref 0 in
  for _ = 1 to moves do
    let undo =
      match Rng.int rng 3 with
      | 0 ->
          let b = Rng.int rng n in
          Bstar_tree.rotate t b;
          fun () -> Bstar_tree.rotate t b
      | 1 ->
          let a = Rng.int rng n and b = Rng.int rng n in
          Bstar_tree.swap_blocks t a b;
          fun () -> Bstar_tree.swap_blocks t a b
      | _ ->
          let snap = Bstar_tree.snapshot t in
          Bstar_tree.move_block t ~rng (Rng.int rng n);
          fun () -> Bstar_tree.restore t snap
    in
    let w, h = Bstar_tree.pack_xy t xs ys in
    acc := !acc + w + h;
    if Rng.bool rng then undo ()
  done;
  Printf.printf "%d blocks, %d moves (%s): %.3fs (checksum %d)\n"
    n moves
    (match mode with `Flat -> "flat" | `Balanced -> "balanced" | `Auto -> "auto")
    (Unix.gettimeofday () -. t0)
    !acc
