(* Scheduler micro-benchmark: spawn-per-call fork-join (the pool this
   repo used before the persistent scheduler) vs the persistent
   work-stealing pool, on many rounds of fine-grained [map]s — the
   shape of the annealer's epoch barriers and the router's batches.
   Also a correctness smoke: every scheme must reproduce the serial
   map bit for bit, and the persistent pool must survive a nested
   outer×inner round without deadlock.

   Usage: pool_bench [rounds] [tasks] [work] [jobs]
   (defaults sized for the @pool-smoke alias: a second or two) *)

module Pool = Tqec_util.Pool

(* The pre-scheduler implementation, reproduced as the baseline: spawn
   [jobs - 1] fresh domains per call, share task indices through a
   mutex-protected counter, join everything before returning. *)
module Spawn_per_call = struct
  let map ~jobs f arr =
    let n = Array.length arr in
    let jobs = min (max 1 jobs) n in
    if n = 0 then [||]
    else if jobs = 1 then Array.map f arr
    else begin
      let results = Array.make n None in
      let next = ref 0 in
      let lock = Mutex.create () in
      let take () =
        Mutex.lock lock;
        let i = !next in
        if i < n then incr next;
        Mutex.unlock lock;
        if i < n then Some i else None
      in
      let rec worker () =
        match take () with
        | None -> ()
        | Some i ->
            results.(i) <- Some (f arr.(i));
            worker ()
      in
      let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains;
      Array.map (function Some v -> v | None -> assert false) results
    end
end

(* Deterministic integer spin: the task body is pure compute with no
   allocation, so the benchmark isolates scheduling overhead. *)
let spin n =
  let acc = ref 1 in
  for i = 1 to n do
    acc := ((!acc * 1103515245) + i) land 0xFFFFFF
  done;
  !acc

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let () =
  let arg i d =
    if Array.length Sys.argv > i then int_of_string Sys.argv.(i) else d
  in
  let rounds = arg 1 300 in
  let tasks = arg 2 64 in
  let work = arg 3 500 in
  let jobs = arg 4 (max 2 (Pool.default_jobs ())) in
  let input = Array.init tasks (fun i -> i) in
  let task i = spin (work + i) in
  let expect = Array.map task input in
  let bench name mapf =
    let r = mapf task input in
    if r <> expect then begin
      Printf.eprintf "[pool-bench] %s: WRONG RESULTS\n" name;
      exit 1
    end;
    let dt =
      time (fun () ->
          for _ = 1 to rounds do
            ignore (mapf task input)
          done)
    in
    Printf.printf "[pool-bench] %-15s %4d rounds x %3d tasks: %6.3fs (%7.0f tasks/s)\n%!"
      name rounds tasks dt
      (float_of_int (rounds * tasks) /. dt);
    dt
  in
  Printf.printf "[pool-bench] fine-grained map throughput (work=%d, jobs=%d)\n%!"
    work jobs;
  let t_spawn = bench "spawn-per-call" (fun f a -> Spawn_per_call.map ~jobs f a) in
  let t_pool = bench "persistent" (fun f a -> Pool.map ~jobs f a) in
  (* Nested shape — outer instances × inner lanes on one pool.  The
     spawn-per-call baseline cannot run this without multiplying
     domains, which is exactly why the suite used to pin inner stages
     to one domain. *)
  let outer = Array.init 4 (fun i -> i) in
  let nested_expect =
    Array.map (fun o -> Array.fold_left ( + ) 0 (Array.map (fun i -> task (o + i)) input)) outer
  in
  let nested () =
    Pool.map ~jobs
      (fun o ->
        Array.fold_left ( + ) 0 (Pool.map ~jobs (fun i -> task (o + i)) input))
      outer
  in
  if nested () <> nested_expect then begin
    Printf.eprintf "[pool-bench] nested: WRONG RESULTS\n";
    exit 1
  end;
  let nested_rounds = max 1 (rounds / 8) in
  let t_nested =
    time (fun () ->
        for _ = 1 to nested_rounds do
          ignore (nested ())
        done)
  in
  Printf.printf
    "[pool-bench] %-15s %4d rounds x %3dx%d tasks: %6.3fs (%7.0f tasks/s)\n%!"
    "nested" nested_rounds (Array.length outer) tasks t_nested
    (float_of_int (nested_rounds * Array.length outer * tasks) /. t_nested);
  Printf.printf
    "[pool-bench] persistent vs spawn-per-call: %.2fx (%d hardware core%s)\n%!"
    (t_spawn /. t_pool)
    (Domain.recommended_domain_count ())
    (if Domain.recommended_domain_count () = 1 then "" else "s")
