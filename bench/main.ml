(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, then times the flow's stages with Bechamel.

   Environment:
     TQEC_EFFORT = quick | normal | full   (default normal)
     TQEC_SCALE  = integer divisor for instance sizes (default 1)
     TQEC_SEED   = random seed (default 42)
     TQEC_BENCHMARKS = comma-separated subset of benchmark names
     TQEC_JOBS   = parallelism for the suite fan-out AND each
                   instance's inner stages (placement multi-start,
                   routing batches): everything feeds one persistent
                   work-stealing pool, so nesting composes instead of
                   oversubscribing
                   (default: the machine's domain count; 1 = serial)
     TQEC_RESTARTS = annealing trajectories per placement (default 1)
     TQEC_EARLY_STOP = adaptive multi-start early-stop margin
                   ("0.05" = 5%); "off" disables early stopping
     TQEC_PARTITION = node cap for divide-and-conquer placement
                   (unset keeps single-die annealing)
     TQEC_SCALE_TIER = 1 to run the scale-tier sweep instead of the
                   paper tables: tier-x<f> instances through the full
                   pipeline, each once with the corridor cache off and
                   once on, one row per (factor, cache) with sparse-grid
                   occupancy, router counters, peak RSS and wall time;
                   also writes the machine-readable BENCH_scale.json
     TQEC_TIER_FACTORS = comma-separated tier factors (default 1,2,4)
     TQEC_TIER_CORRIDOR = corridor threshold (cells) for the sweep
                   (default 64: low enough that the hierarchical
                   corridor router carries tier-x1 already)
     TQEC_TIER_REPS = wall-time repetitions per (factor, cache) pair;
                   the sweep reports the minimum (default 1; use 3+
                   when recording curves, host jitter swamps the
                   cache delta on single runs)
     TQEC_SCALE_JSON = output path for the sweep's JSON report
                   (default BENCH_scale.json)
     TQEC_BENCH_STAGES = 0 to skip the Bechamel stage timings
     TQEC_CHECK_MULTISTART = 1 to cross-check the adaptive multi-start
                   determinism contract (restarts=4, early stopping on,
                   jobs=1 vs jobs=4 must give identical placements);
                   exits non-zero on a mismatch
     TQEC_CHECK_NESTED = 1 to cross-check determinism of the fully
                   nested workload (suite instances x annealing
                   restarts x routing batches on one pool): jobs=1 and
                   jobs=4 suite rows must agree bit for bit *)

module Suite = Tqec_circuit.Suite
module Experiments = Tqec_compress.Experiments
module Report = Tqec_compress.Report
module Pipeline = Tqec_compress.Pipeline
module Baselines = Tqec_compress.Baselines

let config () =
  let base = Experiments.config_from_env () in
  let effort =
    match Sys.getenv_opt "TQEC_EFFORT" with
    | Some _ -> base.Experiments.effort
    | None -> Tqec_place.Placer.Normal
  in
  let benchmarks =
    match Sys.getenv_opt "TQEC_BENCHMARKS" with
    | Some s -> String.split_on_char ',' s |> List.map String.trim
    | None -> base.Experiments.benchmarks
  in
  { base with Experiments.effort; benchmarks }

let rss_cell () =
  match Tqec_util.Stats.peak_rss_kb () with
  | Some kb when kb >= 1024 -> Printf.sprintf "%.1f MB" (float_of_int kb /. 1024.)
  | Some kb -> Printf.sprintf "%d kB" kb
  | None -> "n/a"

(* ------------------------------------------------------------------ *)
(* Scale tiers: memory / wall-time curves beyond the paper suite       *)
(* ------------------------------------------------------------------ *)

(* TQEC_SCALE_TIER=1 switches the harness to the scaling sweep: the
   synthetic tier-x<f> family (Generator.scale_tier) through the full
   pipeline, each factor once with the corridor cache disabled and once
   enabled, one row per (factor, cache) with the sparse routing grid's
   occupancy, the router's cache/search counters, peak RSS and wall
   time.  The touched-cell column against the bounding-box column is
   the sparse-grid memory claim (grid memory scales with routed volume,
   not substrate volume); the cache-off/cache-on wall pair with the hit
   counter is the corridor-reuse claim.  The corridor threshold is
   forced low (TQEC_TIER_CORRIDOR, default 64 cells) so the
   hierarchical router — and with it the cache — carries the routing
   traffic from tier-x1 up.  Both runs of a factor must produce the
   same pipeline fingerprint (the cache is pure memoization); a
   mismatch fails the sweep.  TQEC_TIER_FACTORS picks the factors
   (default "1,2,4").  The sweep also writes BENCH_scale.json
   (TQEC_SCALE_JSON) for build rules and plotting. *)
let run_scale_tiers (config : Experiments.config) =
  let module Counters = Tqec_route.Counters in
  let module Json = Tqec_serve.Json in
  let factors =
    match Sys.getenv_opt "TQEC_TIER_FACTORS" with
    | Some s ->
        String.split_on_char ',' s
        |> List.filter_map (fun t -> int_of_string_opt (String.trim t))
        |> List.filter (fun f -> f >= 1)
    | None -> [ 1; 2; 4 ]
  in
  let factors = if factors = [] then [ 1 ] else factors in
  let corridor =
    match Sys.getenv_opt "TQEC_TIER_CORRIDOR" with
    | Some s -> ( match int_of_string_opt s with Some v when v >= 0 -> v | _ -> 64)
    | None -> 64
  in
  (* Wall-time repetitions per (factor, cache) pair.  A single pipeline
     run's wall time carries the host's scheduling jitter — several
     percent on a busy box, easily swamping the cache's effect — so the
     recorded curves take the minimum over [reps] runs (the standard
     low-noise estimator for a deterministic workload).  Counters and
     fingerprints are deterministic across reps and are taken from the
     last run; CI keeps reps = 1 for speed. *)
  let reps =
    match Sys.getenv_opt "TQEC_TIER_REPS" with
    | Some s -> ( match int_of_string_opt s with Some v when v >= 1 -> v | _ -> 1)
    | None -> 1
  in
  let pipeline_config corridor_cache =
    {
      Pipeline.default_config with
      effort = config.Experiments.effort;
      seed = config.Experiments.seed;
      restarts = config.Experiments.restarts;
      jobs = config.Experiments.jobs;
      early_stop_margin = config.Experiments.early_stop_margin;
      partition = config.Experiments.partition;
      corridor_cells = Some corridor;
      corridor_cache;
    }
  in
  let t =
    Tqec_util.Pretty.create
      [ "tier"; "cache"; "modules"; "nodes"; "volume"; "grid cells"; "touched";
        "touched%"; "hits"; "misses"; "stale"; "coarse"; "fine"; "flat";
        "peak RSS"; "wall" ]
  in
  let counters_json (s : Counters.stats) wall =
    Json.Obj
      [
        ("wall_s", Json.Float wall);
        ("cache_hits", Json.Int s.Counters.cache_hits);
        ("cache_misses", Json.Int s.Counters.cache_misses);
        ("cache_stale", Json.Int s.Counters.cache_stale);
        ("coarse_searches", Json.Int s.Counters.coarse_searches);
        ("fine_searches", Json.Int s.Counters.fine_searches);
        ("flat_searches", Json.Int s.Counters.flat_searches);
        ("flat_fallbacks", Json.Int s.Counters.flat_fallbacks);
        ("scratch_grows", Json.Int s.Counters.scratch_grows);
      ]
  in
  let tier_rows =
    List.map
      (fun f ->
        let c = Tqec_circuit.Generator.scale_tier ~factor:f () in
        Printf.eprintf "[bench] running tier-x%d (%d gates, %d wires)...\n%!" f
          (Tqec_circuit.Circuit.n_gates c) c.Tqec_circuit.Circuit.n_qubits;
        let run_once corridor_cache =
          Counters.reset ();
          let r = Pipeline.run ~config:(pipeline_config corridor_cache) c in
          (r, Counters.stats ())
        in
        (* Interleave the off/on repetitions (off, on, off, on, ...)
           instead of running each block back to back: host throughput
           drifts over the minutes a large tier takes, and pairing the
           runs keeps the drift out of the off-vs-on comparison. *)
        let best_off = ref infinity and best_on = ref infinity in
        let last_off = ref None and last_on = ref None in
        for _ = 1 to reps do
          let ((r, _) as m) = run_once false in
          if r.Pipeline.elapsed < !best_off then best_off := r.Pipeline.elapsed;
          last_off := Some m;
          let ((r, _) as m) = run_once true in
          if r.Pipeline.elapsed < !best_on then best_on := r.Pipeline.elapsed;
          last_on := Some m
        done;
        let finish last best =
          match !last with
          | Some (r, s) -> ({ r with Pipeline.elapsed = !best }, s)
          | None -> assert false
        in
        let r_off, s_off = finish last_off best_off in
        let r_on, s_on = finish last_on best_on in
        if Pipeline.fingerprint r_on <> Pipeline.fingerprint r_off then begin
          Printf.eprintf
            "[bench] FAIL: tier-x%d fingerprint differs between corridor \
             cache off and on\n%!"
            f;
          exit 1
        end;
        let module Grid = Tqec_route.Grid in
        let m = r_on.Pipeline.grid_mem in
        let touched_pct =
          100.
          *. float_of_int m.Grid.mem_touched_cells
          /. float_of_int (max 1 m.Grid.mem_cells)
        in
        Printf.eprintf
          "[bench]   tier-x%d: volume=%d grid=%d cells touched=%d (%.1f%%) \
           rss=%s wall=%.1fs/%.1fs (cache off/on) hits=%d\n%!"
          f r_on.Pipeline.volume m.Grid.mem_cells m.Grid.mem_touched_cells
          touched_pct (rss_cell ()) r_off.Pipeline.elapsed
          r_on.Pipeline.elapsed s_on.Counters.cache_hits;
        let add_row label (r : Pipeline.t) (s : Counters.stats) =
          Tqec_util.Pretty.add_row t
            [
              Printf.sprintf "tier-x%d" f;
              label;
              string_of_int r.Pipeline.stages.Pipeline.st_modules;
              string_of_int r.Pipeline.stages.Pipeline.st_nodes;
              Tqec_util.Pretty.int_with_commas r.Pipeline.volume;
              Tqec_util.Pretty.int_with_commas m.Grid.mem_cells;
              Tqec_util.Pretty.int_with_commas m.Grid.mem_touched_cells;
              Printf.sprintf "%.1f%%" touched_pct;
              string_of_int s.Counters.cache_hits;
              string_of_int s.Counters.cache_misses;
              string_of_int s.Counters.cache_stale;
              string_of_int s.Counters.coarse_searches;
              string_of_int s.Counters.fine_searches;
              string_of_int s.Counters.flat_searches;
              rss_cell ();
              Printf.sprintf "%.1fs" r.Pipeline.elapsed;
            ]
        in
        add_row "off" r_off s_off;
        add_row "on" r_on s_on;
        Json.Obj
          [
            ("tier", Json.Int f);
            ("modules", Json.Int r_on.Pipeline.stages.Pipeline.st_modules);
            ("nodes", Json.Int r_on.Pipeline.stages.Pipeline.st_nodes);
            ("volume", Json.Int r_on.Pipeline.volume);
            ("grid_cells", Json.Int m.Grid.mem_cells);
            ("touched_cells", Json.Int m.Grid.mem_touched_cells);
            ("fingerprint", Json.String (Pipeline.fingerprint r_on));
            ("cache_off", counters_json s_off r_off.Pipeline.elapsed);
            ("cache_on", counters_json s_on r_on.Pipeline.elapsed);
          ])
      factors
  in
  print_string
    "Scale tiers (sparse-grid occupancy, router counters, peak RSS, wall \
     time; corridor cache off vs on):\n";
  Tqec_util.Pretty.print t;
  let report =
    Json.Obj
      [
        ("schema", Json.String "tqec-bench-scale/1");
        ( "effort",
          Json.String
            (match config.Experiments.effort with
            | Tqec_place.Placer.Quick -> "quick"
            | Tqec_place.Placer.Normal -> "normal"
            | Tqec_place.Placer.Full -> "full") );
        ("seed", Json.Int config.Experiments.seed);
        ("corridor_cells", Json.Int corridor);
        ("reps", Json.Int reps);
        ("tiers", Json.List tier_rows);
      ]
  in
  let path =
    Option.value ~default:"BENCH_scale.json" (Sys.getenv_opt "TQEC_SCALE_JSON")
  in
  let oc = open_out path in
  output_string oc (Json.to_string report);
  output_string oc "\n";
  close_out oc;
  Printf.eprintf "[bench] wrote %s\n%!" path

let regenerate_tables config =
  let entries =
    Suite.all
    |> List.filter (fun (e : Suite.entry) ->
           List.mem e.Suite.spec.Tqec_circuit.Generator.name
             config.Experiments.benchmarks)
    |> Array.of_list
  in
  (* Instances fan out across domains (TQEC_JOBS); per-instance progress
     lines may interleave, but the rows come back in suite order so the
     tables are identical to a serial run. *)
  let t0 = Unix.gettimeofday () in
  let rows =
    Tqec_util.Pool.map ?jobs:config.Experiments.jobs
      (fun (e : Suite.entry) ->
        let name = e.Suite.spec.Tqec_circuit.Generator.name in
        Printf.eprintf "[bench] running %s...\n%!" name;
        let row = Experiments.run_benchmark config e in
        Printf.eprintf
          "[bench]   %s: canonical=%d dual-only=%d ours=%d (%.1fs + %.1fs, \
           rss=%s)\n%!"
          name row.Report.r_canonical row.Report.r_dual_only row.Report.r_ours
          row.Report.r_dual_only_runtime row.Report.r_ours_runtime
          (rss_cell ());
        row)
      entries
    |> Array.to_list
  in
  Printf.eprintf "[bench] suite wall-clock: %.1fs (jobs=%d, rss=%s)\n%!"
    (Unix.gettimeofday () -. t0)
    (match config.Experiments.jobs with
    | Some j -> j
    | None -> Tqec_util.Pool.default_jobs ())
    (rss_cell ());
  print_string (Report.table1 rows);
  print_newline ();
  print_string (Report.table2 rows);
  print_newline ();
  print_string (Report.table3 rows);
  print_newline ();
  Printf.eprintf "[bench] running Figure 1 series...\n%!";
  print_string (Report.fig1 (Experiments.fig1_series ()));
  print_newline ();
  print_string (Report.summary rows)

(* ------------------------------------------------------------------ *)
(* Adaptive multi-start determinism cross-check                        *)
(* ------------------------------------------------------------------ *)

(* The determinism contract behind adaptive early stopping: a placement
   with restarts=4 and early stopping enabled is a pure function of
   (seed, restarts) — jobs=1 and jobs=4 must agree on the best cost and
   the full geometry.  Run on every `dune runtest` via @bench-smoke. *)
let check_multistart () =
  let module Placer = Tqec_place.Placer in
  let module Sa = Tqec_place.Sa in
  let entry = List.hd Suite.all (* 4gt10-v1_81, the smallest *) in
  let circuit = Suite.scaled ~factor:16 entry in
  let icm =
    Tqec_icm.Decompose.run (Tqec_circuit.Clifford_t.decompose circuit)
  in
  let g = Tqec_pdgraph.Pd_graph.of_icm icm in
  ignore (Tqec_pdgraph.Ishape.run g);
  let time_sms = Tqec_place.Super_module.time_sm_modules g in
  let in_sm = Hashtbl.create 16 in
  List.iter
    (fun (_, ms) -> List.iter (fun m -> Hashtbl.replace in_sm m ()) ms)
    time_sms;
  let flipping = Tqec_pdgraph.Flipping.run ~exclude:(Hashtbl.mem in_sm) g in
  let dual = Tqec_pdgraph.Dual_bridge.run g in
  let fvalue = Tqec_pdgraph.Fvalue.plan flipping in
  let place jobs =
    let config =
      {
        Placer.default_config with
        effort = Placer.Quick;
        seed = 42;
        restarts = 4;
        jobs = Some jobs;
        early_stop_margin = Some 0.05;
        partition = None;
      }
    in
    Placer.place ~config g flipping dual fvalue
  in
  let a = place 1 in
  let b = place 4 in
  let same =
    a.Placer.sa_stats.Sa.best_cost = b.Placer.sa_stats.Sa.best_cost
    && a.Placer.sa_stats.Sa.attempted = b.Placer.sa_stats.Sa.attempted
    && a.Placer.node_pos = b.Placer.node_pos
    && a.Placer.rotated = b.Placer.rotated
    && (a.Placer.width, a.Placer.height, a.Placer.depth)
       = (b.Placer.width, b.Placer.height, b.Placer.depth)
  in
  if not same then begin
    Printf.eprintf
      "[bench] FAIL: adaptive multi-start placement differs between jobs=1 \
       and jobs=4 (best %g vs %g, attempted %d vs %d)\n%!"
      a.Placer.sa_stats.Sa.best_cost b.Placer.sa_stats.Sa.best_cost
      a.Placer.sa_stats.Sa.attempted b.Placer.sa_stats.Sa.attempted;
    exit 1
  end;
  Printf.eprintf
    "[bench] multi-start determinism ok (restarts=4, early-stop 0.05, jobs 1 \
     vs 4: best=%g attempted=%d)\n%!"
    a.Placer.sa_stats.Sa.best_cost a.Placer.sa_stats.Sa.attempted

(* ------------------------------------------------------------------ *)
(* Nested-workload determinism cross-check                             *)
(* ------------------------------------------------------------------ *)

(* The full nesting the persistent pool must keep deterministic: suite
   instances fan out as tasks, each instance runs annealing restarts as
   nested tasks, and each routing iteration batches nets as
   nested-nested tasks — all on the same scheduler.  Rows (minus wall
   clock) must be a pure function of (seed, restarts): jobs=1 and
   jobs=4 agree bit for bit.  Run on every `dune runtest` via
   @bench-smoke. *)
let check_nested () =
  let run jobs =
    Experiments.run_all
      {
        Experiments.effort = Tqec_place.Placer.Quick;
        auto_scale = false;
        scale = 16;
        seed = 42;
        restarts = 2;
        benchmarks = [ "4gt10-v1_81"; "4gt4-v0_73" ];
        jobs = Some jobs;
        early_stop_margin = Some 0.05;
        partition = None;
        debug = false;
      }
    |> List.map (fun (r : Report.row) ->
           (* strip wall-clock fields; everything else must match *)
           ( r.Report.r_name,
             r.Report.r_stats,
             r.Report.r_modules,
             r.Report.r_nodes,
             r.Report.r_canonical,
             r.Report.r_lin1d,
             r.Report.r_lin2d,
             r.Report.r_dual_only,
             r.Report.r_ours,
             r.Report.r_scale ))
  in
  let a = run 1 in
  let b = run 4 in
  if a <> b then begin
    Printf.eprintf
      "[bench] FAIL: nested suite x restarts x routing run differs between \
       jobs=1 and jobs=4\n%!";
    exit 1
  end;
  Printf.eprintf
    "[bench] nested determinism ok (2 instances x 2 restarts x routed \
     batches, jobs 1 vs 4: %s)\n%!"
    (String.concat ", "
       (List.map
          (fun (name, _, _, _, _, _, _, _, ours, _) ->
            Printf.sprintf "%s ours=%d" name ours)
          a))

(* ------------------------------------------------------------------ *)
(* Bechamel stage timings                                              *)
(* ------------------------------------------------------------------ *)

let stage_tests () =
  let open Bechamel in
  let entry = List.hd Suite.all (* 4gt10-v1_81, the smallest *) in
  let circuit = Suite.circuit entry in
  let clifford = Tqec_circuit.Clifford_t.decompose circuit in
  let icm = Tqec_icm.Decompose.run clifford in
  let graph () =
    let g = Tqec_pdgraph.Pd_graph.of_icm icm in
    ignore (Tqec_pdgraph.Ishape.run g);
    g
  in
  let small_icm = Tqec_icm.Decompose.run Suite.three_cnot_example in
  Test.make_grouped ~name:"stages"
  [
    (* Table 1 machinery: decomposition and PD-graph statistics. *)
    Test.make ~name:"table1/decompose+stats"
      (Staged.stage (fun () ->
           let icm = Tqec_icm.Decompose.run clifford in
           ignore (Tqec_icm.Icm.stats icm)));
    Test.make ~name:"table1/pd-graph+ishape"
      (Staged.stage (fun () -> ignore (graph ())));
    Test.make ~name:"table1/flipping"
      (Staged.stage (fun () ->
           let g = graph () in
           ignore (Tqec_pdgraph.Flipping.run g)));
    (* Table 2 baselines. *)
    Test.make ~name:"table2/canonical"
      (Staged.stage (fun () -> ignore (Baselines.canonical_volume icm)));
    Test.make ~name:"table2/lin-1d"
      (Staged.stage (fun () -> ignore (Baselines.lin_1d icm)));
    Test.make ~name:"table2/lin-2d"
      (Staged.stage (fun () -> ignore (Baselines.lin_2d icm)));
    (* Table 3 pipelines on the Fig. 1 example (full pipelines on suite
       instances are measured by the table run above). *)
    Test.make ~name:"table3/pipeline-dual-only"
      (Staged.stage (fun () ->
           ignore
             (Pipeline.run_icm
                ~config:
                  {
                    Pipeline.default_config with
                    variant = Pipeline.Dual_only;
                    effort = Tqec_place.Placer.Quick;
                  }
                small_icm)));
    Test.make ~name:"table3/pipeline-full"
      (Staged.stage (fun () ->
           ignore
             (Pipeline.run_icm
                ~config:
                  {
                    Pipeline.default_config with
                    effort = Tqec_place.Placer.Quick;
                  }
                small_icm)));
    (* Fig. 1 canonical geometry + braiding machinery. *)
    Test.make ~name:"fig1/canonical-geometry"
      (Staged.stage (fun () -> ignore (Tqec_geom.Canonical.build small_icm)));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances (stage_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "Stage timings (Bechamel, monotonic clock):";
  let t = Tqec_util.Pretty.create [ "stage"; "time/run" ] in
  let rows = ref [] in
  (* hash-order: rows are sorted by name before printing *)
  Hashtbl.iter
    (fun name result ->
      let cell =
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
            if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
            else Printf.sprintf "%.0f ns" est
        | _ -> "n/a"
      in
      rows := (name, cell) :: !rows)
    results;
  List.iter
    (fun (name, cell) -> Tqec_util.Pretty.add_row t [ name; cell ])
    (List.sort compare !rows);
  Tqec_util.Pretty.print t

let () =
  let config = config () in
  if Sys.getenv_opt "TQEC_CHECK_MULTISTART" = Some "1" then
    check_multistart ();
  if Sys.getenv_opt "TQEC_CHECK_NESTED" = Some "1" then check_nested ();
  if Sys.getenv_opt "TQEC_SCALE_TIER" = Some "1" then begin
    run_scale_tiers config;
    exit 0
  end;
  Printf.printf
    "TQEC bridge-compression benchmark harness (effort=%s, scale=%d)\n\n"
    (match config.Experiments.effort with
    | Tqec_place.Placer.Quick -> "quick"
    | Tqec_place.Placer.Normal -> "normal"
    | Tqec_place.Placer.Full -> "full")
    config.Experiments.scale;
  regenerate_tables config;
  if Sys.getenv_opt "TQEC_BENCH_STAGES" <> Some "0" then begin
    print_newline ();
    run_bechamel ()
  end
